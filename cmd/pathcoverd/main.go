// Command pathcoverd serves minimum path covers of cographs over HTTP
// from a sharded pathcover.Pool.
//
//	pathcoverd -addr :8080 -shards 4
//
// Endpoints (request/response bodies are JSON):
//
//	POST /cover        {"cotree": "(1 (0 a b) c)"}            -> cover
//	                   {"n": 4, "edges": [[0,1],[1,2]]}       -> cover
//	GET/POST /cover?id=g1                                     -> cover of a registered graph
//	POST /hamiltonian  {"cotree": "...", "cycle": true}       -> {"ok": ..., "path": [...]}
//	POST /batch        {"graphs": [spec, spec, ...]}          -> {"covers": [cover, ...]}
//	POST /graphs       {graph spec}                           -> {"id": "g1", ...}
//	GET  /graphs/{id}                                         -> registered-graph info
//	DELETE /graphs/{id}                                       -> {"deleted": true}
//	GET  /healthz                                             -> {"ok": true, ...}
//	GET  /stats                                               -> pool + cache + registry counters
//
// A graph spec is either a cotree string (the package's text format) or
// an explicit edge list. Edge lists are not restricted to cographs:
// non-cograph inputs degrade to the exact tree backend (forests) or the
// ½-approximation backend, and every cover response reports the route
// taken ("backend"), whether the answer is provably minimum ("exact"),
// and for approximate answers the certified "lower_bound" and "gap".
// Appending ?strict=1 to /cover or /batch restores the old contract:
// non-cograph edge lists are rejected with 400. A request may also pin
// the route with a "backend" field ("auto", "cograph", "tree",
// "approx"); a pinned backend that cannot serve the graph fails with
// 400 instead of rerouting.
//
// Covers carry the paths (unless "omit_paths" is set), the simulated
// PRAM cost of the computation, and wall time; "include_names" adds the
// server-side vertex names, letting clients remap paths onto their own
// numbering (the cotree text format numbers vertices by leaf order, so
// names — which travel with the leaves — are the stable identity).
// Saturated admission maps to 503; client disconnects cancel queued
// work via the request context; requests cut off by -request-timeout
// mid-pipeline get 504 with a JSON body.
//
// POST /graphs registers a graph for repeated querying: parse,
// validation, recognition and canonicalization are paid once, and
// GET/POST /cover?id=... then serves it by id. The store holds at most
// -max-graphs entries (LRU-evicted; stale ids return 404 and clients
// re-register). The pool runs a canonical-identity result cache of
// -cache-mb MiB: repeats of an already-solved graph — including
// relabelled isomorphic presentations — are answered from cache
// without a solve, and concurrent duplicates coalesce onto one solve.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"
	"time"

	"pathcover"
)

var (
	addr       = flag.String("addr", ":8080", "listen address")
	shards     = flag.Int("shards", 0, "solver shards (0 = GOMAXPROCS/2)")
	queue      = flag.Int("queue", 0, "admission queue depth (0 = 8 per shard, negative = unbounded)")
	maxBody    = flag.Int64("max-body", 64<<20, "request body size limit in bytes")
	verify     = flag.Bool("verify", false, "re-verify every cover before responding (debugging; O(n) extra per request)")
	reqTimeout = flag.Duration("request-timeout", 30*time.Second,
		"per-request deadline enforced inside the solve pipeline; requests over it get 504 (0 disables)")
	cacheMB    = flag.Int64("cache-mb", 64, "canonical-identity result cache capacity in MiB (0 disables)")
	maxGraphs  = flag.Int("max-graphs", 0, "registered-graph capacity for POST /graphs (0 = default 1024)")
	affinity   = flag.Bool("affinity", false, "pin each shard's workers to a disjoint CPU set (Linux; no-op elsewhere)")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile covering the daemon's lifetime to this file on shutdown (pprof format; feeds default.pgo for PGO builds)")
)

type server struct {
	pool     *pathcover.Pool
	reg      *pathcover.Registry
	started  time.Time
	requests atomic.Int64
}

// graphSpec is the wire form of a graph: exactly one of the cotree text
// format or an explicit edge list on vertices 0..n-1.
type graphSpec struct {
	Cotree string   `json:"cotree,omitempty"`
	N      int      `json:"n,omitempty"`
	Edges  [][2]int `json:"edges,omitempty"`
	Names  []string `json:"names,omitempty"`
}

// graph builds the spec's Graph. strict restores the pre-degradation
// contract: edge lists must recognize as cographs or the request fails
// (mapped to 400 by the handlers).
func (s *graphSpec) graph(strict bool) (*pathcover.Graph, error) {
	switch {
	case s.Cotree != "" && (s.N != 0 || len(s.Edges) != 0):
		return nil, errors.New("give either a cotree or an edge list, not both")
	case s.Cotree != "":
		return pathcover.ParseCotree(s.Cotree)
	case s.N > 0:
		if strict {
			return pathcover.FromEdges(s.N, s.Edges, s.Names)
		}
		return pathcover.FromEdgesAny(s.N, s.Edges, s.Names)
	default:
		return nil, errors.New("empty graph spec: set \"cotree\" or \"n\"+\"edges\"")
	}
}

// strictMode reports whether the request opted into cograph-only
// serving (?strict=1).
func strictMode(r *http.Request) bool {
	v := r.URL.Query().Get("strict")
	return v != "" && v != "0" && v != "false"
}

type coverRequest struct {
	graphSpec
	OmitPaths bool `json:"omit_paths,omitempty"`
	// IncludeNames adds the "names" array (vertex id -> display name) to
	// the response, so a client that submitted the cotree text format —
	// whose parse numbers vertices by leaf order — can remap the paths
	// onto its own numbering by name.
	IncludeNames bool `json:"include_names,omitempty"`
	// Backend pins the solve route ("auto", "cograph", "tree",
	// "approx"); empty means automatic selection.
	Backend string `json:"backend,omitempty"`
}

// coverOpts maps the request's backend field (and strict mode) onto
// solve options.
func coverOpts(backendName string, strict bool) ([]pathcover.Option, error) {
	var opts []pathcover.Option
	if backendName != "" {
		b, err := pathcover.ParseBackend(backendName)
		if err != nil {
			return nil, err
		}
		opts = append(opts, pathcover.WithBackend(b))
	}
	if strict {
		opts = append(opts, pathcover.WithExactOnly())
	}
	return opts, nil
}

type statsJSON struct {
	Procs int   `json:"procs"`
	Time  int64 `json:"time"`
	Work  int64 `json:"work"`
}

type coverResponse struct {
	N        int     `json:"n"`
	NumPaths int     `json:"num_paths"`
	Paths    [][]int `json:"paths,omitempty"`
	// Names maps vertex ids to display names (only when the request set
	// "include_names").
	Names []string `json:"names,omitempty"`
	// Exact is true when NumPaths is provably minimum (cograph and tree
	// backends); Backend names the route. Approximate answers carry the
	// certified lower bound and the gap num_paths - lower_bound.
	Exact      bool      `json:"exact"`
	Backend    string    `json:"backend"`
	LowerBound int       `json:"lower_bound"`
	Gap        int       `json:"gap"`
	Stats      statsJSON `json:"stats"`
	// ElapsedMS is per-request wall time; batch responses report one
	// batch-level elapsed_ms instead of faking a per-cover number.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

func coverJSON(g *pathcover.Graph, cov *pathcover.Cover, omitPaths bool, elapsed time.Duration) coverResponse {
	resp := coverResponse{
		N:          g.N(),
		NumPaths:   cov.NumPaths,
		Exact:      cov.Exact,
		Backend:    cov.Backend.String(),
		LowerBound: cov.LowerBound,
		Gap:        cov.Gap,
		Stats: statsJSON{
			Procs: cov.Stats.Procs,
			Time:  cov.Stats.Time,
			Work:  cov.Stats.Work,
		},
	}
	if elapsed > 0 {
		resp.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	}
	if !omitPaths {
		resp.Paths = cov.Paths
		if resp.Paths == nil {
			resp.Paths = [][]int{}
		}
	}
	return resp
}

// vertexNames materialises the id -> name table of a graph.
func vertexNames(g *pathcover.Graph) []string {
	names := make([]string, g.N())
	for i := range names {
		names[i] = g.Name(i)
	}
	return names
}

type hamiltonianRequest struct {
	graphSpec
	Cycle bool `json:"cycle,omitempty"`
}

type batchRequest struct {
	Graphs    []graphSpec `json:"graphs"`
	OmitPaths bool        `json:"omit_paths,omitempty"`
	// IncludeNames adds the per-cover "names" arrays, as for /cover.
	IncludeNames bool `json:"include_names,omitempty"`
	// Backend pins the solve route for every graph of the batch.
	Backend string `json:"backend,omitempty"`
}

func main() {
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("pathcoverd: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("pathcoverd: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("pathcoverd: %v", err)
			}
			log.Printf("pathcoverd: wrote CPU profile %s", *cpuprofile)
		}()
	}
	var popts []pathcover.PoolOption
	if *shards > 0 {
		popts = append(popts, pathcover.WithShards(*shards))
	}
	if *queue != 0 {
		popts = append(popts, pathcover.WithQueueDepth(*queue))
	}
	if *cacheMB > 0 {
		popts = append(popts, pathcover.WithCache(*cacheMB<<20))
	}
	if *affinity {
		popts = append(popts, pathcover.WithShardAffinity())
	}
	s := &server{
		pool:    pathcover.NewPool(popts...),
		reg:     pathcover.NewRegistry(*maxGraphs),
		started: time.Now(),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/cover", s.handleCover)
	mux.HandleFunc("/hamiltonian", s.handleHamiltonian)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("POST /graphs", s.handleRegister)
	mux.HandleFunc("GET /graphs/{id}", s.handleGraphInfo)
	mux.HandleFunc("DELETE /graphs/{id}", s.handleGraphDelete)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("pathcoverd: serving on %s (%d shards, queue depth %d)",
		*addr, s.pool.NumShards(), s.pool.Stats().QueueDepth)
	select {
	case err := <-errc:
		log.Fatalf("pathcoverd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("pathcoverd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("pathcoverd: shutdown: %v", err)
	}
	s.pool.Close()
}

// decode reads one JSON request body within the size limit.
func decode(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, *maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		log.Printf("pathcoverd: encode: %v", err)
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

// fail maps pool, routing and parse errors onto HTTP statuses.
func fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, pathcover.ErrPoolSaturated):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, pathcover.ErrPoolClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, pathcover.ErrNotExact),
		errors.Is(err, pathcover.ErrNotCograph),
		errors.Is(err, pathcover.ErrNotForest):
		// The request's routing constraints (strict mode or a pinned
		// backend) cannot serve this graph.
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		// The -request-timeout deadline cut the solve off mid-pipeline.
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled):
		// Client went away; 499 in the nginx tradition.
		writeJSON(w, 499, errorResponse{Error: err.Error()})
	case errors.Is(err, pathcover.ErrSolverPanic):
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// requestCtx derives the solve context: the client's context bounded by
// the -request-timeout deadline.
func requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if *reqTimeout > 0 {
		return context.WithTimeout(r.Context(), *reqTimeout)
	}
	return r.Context(), func() {}
}

func badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return false
	}
	return true
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"shards":   s.pool.NumShards(),
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"pool":       s.pool.Stats(),
		"registry":   s.reg.Stats(),
		"requests":   s.requests.Load(),
		"uptime_s":   time.Since(s.started).Seconds(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"num_cpu":    runtime.NumCPU(),
	})
}

// boolParam reads a query-string boolean ("1"/"true"), so GET
// /cover?id= requests can ask for omit_paths / include_names without a
// body.
func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v != "" && v != "0" && v != "false"
}

// handleCover serves POST /cover with an inline graph spec, and
// GET/POST /cover?id=... against a registered graph.
func (s *server) handleCover(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if r.Method != http.MethodGet || id == "" {
		if !requirePost(w, r) {
			return
		}
	}
	s.requests.Add(1)
	var req coverRequest
	if r.Method == http.MethodPost {
		if err := decode(w, r, &req); err != nil {
			badRequest(w, err)
			return
		}
	}
	req.OmitPaths = req.OmitPaths || boolParam(r, "omit_paths")
	req.IncludeNames = req.IncludeNames || boolParam(r, "include_names")
	strict := strictMode(r)
	var g *pathcover.Graph
	if id != "" {
		if req.Cotree != "" || req.N != 0 || len(req.Edges) != 0 {
			badRequest(w, errors.New("give either ?id= or a graph spec, not both"))
			return
		}
		var ok bool
		if g, ok = s.reg.Get(id); !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no registered graph %q", id)})
			return
		}
	} else {
		var err error
		if g, err = req.graph(strict); err != nil {
			badRequest(w, err)
			return
		}
	}
	opts, err := coverOpts(req.Backend, strict)
	if err != nil {
		badRequest(w, err)
		return
	}
	ctx, cancel := requestCtx(r)
	defer cancel()
	start := time.Now()
	cov, err := s.pool.MinimumPathCover(ctx, g, opts...)
	if err != nil {
		fail(w, err)
		return
	}
	if *verify {
		if err := g.Verify(cov.Paths); err != nil {
			fail(w, fmt.Errorf("cover failed verification: %w", err))
			return
		}
	}
	resp := coverJSON(g, cov, req.OmitPaths, time.Since(start))
	if req.IncludeNames {
		resp.Names = vertexNames(g)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRegister (POST /graphs) parses, validates and canonicalizes a
// graph spec once and stores it under a fresh id for repeated
// GET/POST /cover?id= querying.
func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var spec graphSpec
	if err := decode(w, r, &spec); err != nil {
		badRequest(w, err)
		return
	}
	g, err := spec.graph(strictMode(r))
	if err != nil {
		badRequest(w, err)
		return
	}
	id := s.reg.Register(g)
	writeJSON(w, http.StatusOK, graphInfoJSON(id, g))
}

func graphInfoJSON(id string, g *pathcover.Graph) map[string]any {
	info := map[string]any{
		"id":      id,
		"n":       g.N(),
		"cograph": g.IsCograph(),
	}
	if hi, lo, ok := g.CanonicalHash(); ok {
		info["canonical_hash"] = fmt.Sprintf("%016x%016x", hi, lo)
	}
	return info
}

func (s *server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	g, ok := s.reg.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no registered graph %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, graphInfoJSON(id, g))
}

func (s *server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	if !s.reg.Delete(id) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no registered graph %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": true, "id": id})
}

func (s *server) handleHamiltonian(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	s.requests.Add(1)
	var req hamiltonianRequest
	if err := decode(w, r, &req); err != nil {
		badRequest(w, err)
		return
	}
	// Hamiltonicity is cograph-only (no degraded backend exists), so the
	// edge-list form must recognize regardless of strict mode.
	g, err := req.graph(true)
	if err != nil {
		badRequest(w, err)
		return
	}
	ctx, cancel := requestCtx(r)
	defer cancel()
	start := time.Now()
	var (
		path []int
		ok   bool
	)
	if req.Cycle {
		path, ok, err = s.pool.HamiltonianCycle(ctx, g)
	} else {
		path, ok, err = s.pool.HamiltonianPath(ctx, g)
	}
	if err != nil {
		fail(w, err)
		return
	}
	if path == nil {
		path = []int{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         ok,
		"cycle":      req.Cycle,
		"path":       path,
		"n":          g.N(),
		"elapsed_ms": float64(time.Since(start).Nanoseconds()) / 1e6,
	})
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	s.requests.Add(1)
	var req batchRequest
	if err := decode(w, r, &req); err != nil {
		badRequest(w, err)
		return
	}
	if len(req.Graphs) == 0 {
		badRequest(w, errors.New("empty batch"))
		return
	}
	strict := strictMode(r)
	gs := make([]*pathcover.Graph, len(req.Graphs))
	for i := range req.Graphs {
		g, err := req.Graphs[i].graph(strict)
		if err != nil {
			badRequest(w, fmt.Errorf("graph %d: %w", i, err))
			return
		}
		gs[i] = g
	}
	opts, err := coverOpts(req.Backend, strict)
	if err != nil {
		badRequest(w, err)
		return
	}
	ctx, cancel := requestCtx(r)
	defer cancel()
	start := time.Now()
	covs, err := s.pool.CoverBatch(ctx, gs, opts...)
	if err != nil {
		fail(w, err)
		return
	}
	elapsed := time.Since(start)
	out := make([]coverResponse, len(covs))
	for i, cov := range covs {
		if *verify {
			if err := gs[i].Verify(cov.Paths); err != nil {
				fail(w, fmt.Errorf("cover %d failed verification: %w", i, err))
				return
			}
		}
		out[i] = coverJSON(gs[i], cov, req.OmitPaths, 0)
		if req.IncludeNames {
			out[i].Names = vertexNames(gs[i])
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"covers":     out,
		"elapsed_ms": float64(elapsed.Nanoseconds()) / 1e6,
	})
}
