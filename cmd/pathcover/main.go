// Command pathcover computes minimum path covers, Hamiltonian paths and
// Hamiltonian cycles of cographs given as cotrees. Edge-list input
// (-edges) additionally accepts arbitrary graphs: non-cographs degrade
// to the exact tree backend (forests) or the greedy ½-approximation
// (everything else) unless -strict is set.
//
// Usage:
//
//	pathcover [flags] [file]
//
// The input is a cotree in the text format, read from the file argument
// or standard input:
//
//	tree  := leaf | "(" label tree tree ... ")"
//	label := "0" (union) | "1" (join)
//
// Examples:
//
//	echo "(1 (0 a b) c)" | pathcover
//	pathcover -algo seq -render graph.cotree
//	pathcover -gen random -n 100000 -stats /dev/null
//	pathcover -ham -cycle instance.cotree
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pathcover"
)

var (
	algo    = flag.String("algo", "parallel", "algorithm: parallel | seq | naive")
	procs   = flag.Int("procs", 0, "simulated PRAM processors (0 = n/log n)")
	workers = flag.Int("workers", 0, "goroutines for parallel phases (0 = auto)")
	seed    = flag.Uint64("seed", 1, "randomization seed")
	stats   = flag.Bool("stats", false, "print simulated PRAM time and work")
	render  = flag.Bool("render", false, "draw the cotree")
	check   = flag.Bool("verify", true, "verify validity and minimality of the cover")
	ham     = flag.Bool("ham", false, "also report a Hamiltonian path if one exists")
	cycle   = flag.Bool("cycle", false, "also report a Hamiltonian cycle if one exists")
	quiet   = flag.Bool("q", false, "print only the path count")
	gen     = flag.String("gen", "", "generate instead of reading: random | clique | empty | star | threshold")
	genN    = flag.Int("n", 1000, "size for -gen")
	edges   = flag.Bool("edges", false, "input is an edge list (first line: n; then one 'u v' pair per line); non-cographs degrade to the tree or approximation backend")
	strict  = flag.Bool("strict", false, "with -edges: reject non-cographs instead of degrading")
	backnd  = flag.String("backend", "", "pin a solve backend: cograph | tree | approx (default auto)")
)

func main() {
	flag.Parse()
	g, err := input()
	if err != nil {
		fail(err)
	}
	if *render {
		fmt.Print(g.Render())
	}

	var opts []pathcover.Option
	switch *algo {
	case "parallel":
		opts = append(opts, pathcover.WithAlgorithm(pathcover.Parallel))
	case "seq":
		opts = append(opts, pathcover.WithAlgorithm(pathcover.Sequential))
	case "naive":
		opts = append(opts, pathcover.WithAlgorithm(pathcover.Naive))
	default:
		fail(fmt.Errorf("unknown -algo %q", *algo))
	}
	if *procs > 0 {
		opts = append(opts, pathcover.WithProcessors(*procs))
	}
	if *workers > 0 {
		opts = append(opts, pathcover.WithWorkers(*workers))
	}
	opts = append(opts, pathcover.WithSeed(*seed))
	if *backnd != "" {
		b, err := pathcover.ParseBackend(*backnd)
		if err != nil {
			fail(err)
		}
		opts = append(opts, pathcover.WithBackend(b))
	}

	cov, err := g.MinimumPathCover(opts...)
	if err != nil {
		fail(err)
	}
	if *check {
		if err := g.Verify(cov.Paths); err != nil {
			fail(fmt.Errorf("verification failed: %w", err))
		}
	}
	if *quiet {
		fmt.Println(cov.NumPaths)
	} else {
		kind := "minimum path cover"
		if !cov.Exact {
			kind = fmt.Sprintf("approximate path cover (>= %d optimal, gap <= %d)",
				cov.LowerBound, cov.Gap)
		} else if cov.Backend != pathcover.BackendCograph {
			kind = fmt.Sprintf("minimum path cover (%s backend)", cov.Backend)
		}
		fmt.Printf("%d vertices, %d edges, %s: %d path(s)\n",
			g.N(), g.NumEdges(), kind, cov.NumPaths)
		fmt.Print(g.RenderCover(cov.Paths))
	}
	if *stats && cov.Stats.Time > 0 {
		fmt.Printf("simulated PRAM: %d processors, %d time steps, %d work\n",
			cov.Stats.Procs, cov.Stats.Time, cov.Stats.Work)
	}
	if (*ham || *cycle) && !g.IsCograph() {
		fail(fmt.Errorf("hamiltonian path/cycle queries require a cograph"))
	}
	if *ham {
		if p, ok := g.HamiltonianPath(); ok {
			fmt.Printf("hamiltonian path: %s\n", names(g, p))
		} else {
			fmt.Println("no hamiltonian path")
		}
	}
	if *cycle {
		if c, ok := g.HamiltonianCycle(); ok {
			fmt.Printf("hamiltonian cycle: %s\n", names(g, c))
		} else {
			fmt.Println("no hamiltonian cycle")
		}
	}
}

func input() (*pathcover.Graph, error) {
	if *gen != "" {
		switch *gen {
		case "random":
			return pathcover.Random(*seed, *genN, pathcover.Mixed), nil
		case "clique":
			return pathcover.Clique(*genN), nil
		case "empty":
			return pathcover.Empty(*genN), nil
		case "star":
			return pathcover.Star(*genN), nil
		case "threshold":
			return pathcover.Threshold(*seed, *genN), nil
		default:
			return nil, fmt.Errorf("unknown -gen %q", *gen)
		}
	}
	var src []byte
	var err error
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return nil, err
	}
	if *edges {
		return parseEdges(string(src))
	}
	return pathcover.ParseCotree(string(src))
}

// parseEdges reads "n" on the first line and "u v" pairs after it. By
// default any graph is accepted (non-cographs take a degraded backend);
// -strict rejects graphs with an induced P4 like the pre-degradation CLI.
func parseEdges(src string) (*pathcover.Graph, error) {
	fields := strings.Fields(src)
	if len(fields) == 0 {
		return nil, fmt.Errorf("edge input: empty")
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("edge input: bad vertex count %q", fields[0])
	}
	rest := fields[1:]
	if len(rest)%2 != 0 {
		return nil, fmt.Errorf("edge input: odd number of endpoints")
	}
	list := make([][2]int, 0, len(rest)/2)
	for i := 0; i < len(rest); i += 2 {
		u, err1 := strconv.Atoi(rest[i])
		v, err2 := strconv.Atoi(rest[i+1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("edge input: bad pair %q %q", rest[i], rest[i+1])
		}
		list = append(list, [2]int{u, v})
	}
	if *strict {
		return pathcover.FromEdges(n, list, nil)
	}
	return pathcover.FromEdgesAny(n, list, nil)
}

func names(g *pathcover.Graph, vs []int) string {
	out := ""
	for i, v := range vs {
		if i > 0 {
			out += " "
		}
		out += g.Name(v)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pathcover:", err)
	os.Exit(1)
}
