package pathcover

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pathcover/internal/core"
	"pathcover/internal/covercache"
	"pathcover/internal/pram"
)

// Pool errors.
var (
	// ErrPoolClosed is returned by every Pool method after Close.
	ErrPoolClosed = errors.New("pathcover: pool is closed")
	// ErrPoolSaturated is returned when the admission queue is full; the
	// caller should shed load or retry later.
	ErrPoolSaturated = errors.New("pathcover: pool admission queue is full")
	// ErrSolverPanic is the sentinel wrapped by the *PanicError a Pool
	// call returns when the solve panicked; the panicking shard's Solver
	// was rebuilt, so the pool keeps serving.
	ErrSolverPanic = errors.New("pathcover: solver panicked")
)

// PanicError carries the recovered panic value of a solve that blew up
// on a shard. It unwraps to ErrSolverPanic, so errors.Is works; only
// the request that panicked fails — the shard's Solver is replaced
// before the slot is released and the pool stays healthy (see
// PoolStats.Restarts).
type PanicError struct {
	Value any // the recovered value
}

// Error describes the recovered panic value.
func (e *PanicError) Error() string {
	return fmt.Sprintf("pathcover: solver panicked: %v", e.Value)
}

// Unwrap makes every PanicError match errors.Is(err, ErrSolverPanic).
func (e *PanicError) Unwrap() error { return ErrSolverPanic }

// Pool is a sharded, load-aware solver fleet: N independent Solvers
// (each with a pinned worker budget sized so the shards together never
// oversubscribe the host), a least-loaded dispatcher, bounded
// admission, and per-shard statistics. It is the serving layer of this
// package — one Pool per process serves concurrent path-cover queries
// from any number of goroutines, amortising every solver's worker pool,
// scratch arena and Euler-tour cache across the query stream.
//
// Unlike Solver, every Pool method is safe for concurrent use and
// returns results the caller owns (copied out of the shard's arena
// before the shard is released). Covers are computed by the paper's
// parallel algorithm under the simulated cost model, exactly as
// Solver.MinimumPathCover would.
type Pool struct {
	shards []*poolShard
	depth  int // admitted-call bound; 0 = unbounded

	// active is the live shard count: dispatch only considers
	// shards[:active]. It moves between 1 and len(shards) under Resize;
	// resizeMu serializes resizes (dispatch reads active lock-free).
	active   atomic.Int64
	resizeMu sync.Mutex
	resizes  atomic.Int64

	// Construction inputs replayed when Resize re-equips a shard with a
	// new worker budget.
	solverOpts []Option
	affinity   bool

	// cache, when non-nil (WithCache), is the shard-shared result cache
	// keyed on canonical graph identity; baseCfg is the shards' common
	// base configuration, from which per-call cache keys derive.
	cache   *covercache.Cache
	baseCfg config

	inflight atomic.Int64
	closed   atomic.Bool
	closeOne sync.Once

	batches  atomic.Int64
	rejected atomic.Int64
	canceled atomic.Int64
}

// poolShard is one solver plus its exclusive execution slot. The slot
// channel (capacity 1) is the shard's lock; a channel rather than a
// mutex so that waiters can abandon the wait on context cancellation.
type poolShard struct {
	id   int
	slot chan struct{}
	sv   *Solver      // owned by the slot holder; rebuilt after a panic
	opts []Option     // construction options, replayed on rebuild
	load atomic.Int64 // outstanding vertices (queued + executing)

	// statsMu guards the shard's serving record as one unit, so Stats
	// snapshots a consistent row: a reader can never observe a call's
	// vertices without its sim counters, or a rebuilt Solver without its
	// restart tick. calls stays atomic on top of the mutex because the
	// leastLoaded tie-break reads it lock-free on the dispatch path.
	statsMu  sync.Mutex
	workers  int // worker budget of the current sv
	calls    atomic.Int64
	vertices int64
	simTime  int64
	simWork  int64
	restarts int64 // Solvers replaced after a panic
	arena    int64 // Solver arena bytes, snapshotted after each call
}

// record commits one served call to the shard's stats row. Called with
// the shard's slot held, so reading sv here cannot race a restart or
// resize swap.
func (sh *poolShard) record(n int, st Stats) {
	arena := sh.sv.ArenaBytes()
	sh.statsMu.Lock()
	sh.calls.Add(1)
	sh.vertices += int64(n)
	sh.simTime += st.Time
	sh.simWork += st.Work
	sh.arena = arena
	sh.statsMu.Unlock()
}

type poolConfig struct {
	shards     int
	maxShards  int   // physical shard ceiling for Resize; 0 = shards
	queue      int   // 0 = default, negative = unbounded
	cacheBytes int64 // 0 = uncached
	affinity   bool
	solverOpts []Option
}

// PoolOption configures NewPool.
type PoolOption func(*poolConfig)

// WithShards fixes the shard count. The default is half of GOMAXPROCS
// (at least one): enough shards for concurrent queries while each shard
// keeps a multi-worker Sim on larger hosts.
func WithShards(n int) PoolOption {
	return func(c *poolConfig) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithMaxShards raises the pool's physical shard ceiling above its
// starting count, so Resize can later grow the live fleet up to n
// without rebuilding the pool. Shards between the live count and the
// ceiling cost almost nothing while inactive (a Solver creates its
// worker pool lazily, on first call). If n is not above the starting
// shard count it is ignored; the ceiling is then the starting count and
// Resize can only shrink.
func WithMaxShards(n int) PoolOption {
	return func(c *poolConfig) {
		if n > 0 {
			c.maxShards = n
		}
	}
}

// WithQueueDepth bounds how many calls may be inside the Pool at once
// (waiting plus executing); calls beyond the bound fail fast with
// ErrPoolSaturated. The default is 8 calls per shard. A negative depth
// removes the bound.
func WithQueueDepth(d int) PoolOption {
	return func(c *poolConfig) { c.queue = d }
}

// WithShardOptions passes Solver options (WithSeed, WithProcessors,
// WithWideIndices, ...) to every shard. A WithWorkers among them
// overrides the pool's own shard-aware worker sizing — set it only when
// deliberately over- or under-subscribing the host.
func WithShardOptions(opts ...Option) PoolOption {
	return func(c *poolConfig) { c.solverOpts = opts }
}

// WithShardAffinity pins each shard's pram workers to a disjoint set
// of CPUs (shard i gets CPUs i*w .. i*w+w-1 of the host, wrapping past
// NumCPU), so a shard's workers share L2/L3 instead of bouncing cache
// lines across the socket between requests. Linux-only: elsewhere —
// and on hosts too small for helper goroutines (one worker per shard
// means the driving goroutine does all the work, and that goroutine is
// the caller's) — it is a no-op. The pinning rides in the shard's
// construction options, so a Solver rebuilt after a panic is pinned
// the same way.
func WithShardAffinity() PoolOption {
	return func(c *poolConfig) { c.affinity = true }
}

// NewPool builds the shard fleet. Each shard's Solver gets
// pram-budgeted workers (GOMAXPROCS/shards, at least 1), so the whole
// pool respects the host's parallelism budget no matter how many
// queries are in flight. Call Close to stop every shard's worker pool.
func NewPool(opts ...PoolOption) *Pool {
	var cfg poolConfig
	for _, o := range opts {
		o(&cfg)
	}
	m := cfg.shards
	if m <= 0 {
		m = pram.DefaultShards()
	}
	depth := cfg.queue
	switch {
	case depth == 0:
		depth = 8 * m
	case depth < 0:
		depth = 0
	}
	phys := m
	if cfg.maxShards > phys {
		phys = cfg.maxShards
	}
	w := pram.WorkersForShards(m)
	p := &Pool{depth: depth, solverOpts: cfg.solverOpts, affinity: cfg.affinity}
	p.active.Store(int64(m))
	for i := 0; i < phys; i++ {
		sopts := p.shardOpts(i, w)
		sv := NewSolver(sopts...)
		p.shards = append(p.shards, &poolShard{
			id:      i,
			slot:    make(chan struct{}, 1),
			sv:      sv,
			opts:    sopts,
			workers: sv.Workers(),
		})
	}
	// All shards share one base config (only workers could differ, and
	// workers are not part of a cache key).
	p.baseCfg = p.shards[0].sv.cfg
	if cfg.cacheBytes > 0 {
		p.cache = covercache.New(cfg.cacheBytes)
	}
	return p
}

// shardOpts builds shard i's Solver options for a per-shard worker
// budget of w: the pool's common solver options under a pinned
// WithWorkers, plus the affinity CPU set when enabled.
func (p *Pool) shardOpts(i, w int) []Option {
	sopts := append([]Option{WithWorkers(w)}, p.solverOpts...)
	if p.affinity && pram.AffinitySupported() {
		cpus := make([]int, w)
		for j := range cpus {
			cpus[j] = (i*w + j) % runtime.NumCPU()
		}
		sopts = append(sopts, withCPUSet(cpus))
	}
	return sopts
}

// NumShards returns the physical shard count — the ceiling Resize can
// grow to. ActiveShards reports how many currently serve.
func (p *Pool) NumShards() int { return len(p.shards) }

// ActiveShards reports how many shards currently receive dispatch.
func (p *Pool) ActiveShards() int { return int(p.active.Load()) }

// InFlight reports how many admitted calls are inside the pool right
// now (queued plus executing).
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// QueueDepth reports the admission bound (0 = unbounded).
func (p *Pool) QueueDepth() int { return p.depth }

// Load reports the pool's outstanding dispatch load: the sum over
// shards of queued-plus-executing vertices (each call also counts 1, so
// empty graphs still register). This is the pressure signal the
// adaptive controller in internal/daemon steers shard count by.
func (p *Pool) Load() int64 {
	total := int64(0)
	for _, sh := range p.shards {
		total += sh.load.Load()
	}
	return total
}

// Resize sets the live shard count to k (clamped to 1..NumShards) and
// re-equips each live shard whose worker budget changed with a fresh
// Solver sized by pram.WorkersForShards(k), so shards×workers keeps
// respecting the host budget at every size. Each swap waits for the
// shard's in-flight call to finish (the swap holds the shard's slot),
// so a live request never loses its Solver mid-solve; the shard's warm
// arena is rebuilt from scratch, which is why callers should resize on
// sustained pressure changes, not per-request noise. Shrinking only
// stops new dispatch to the dropped shards — calls already queued on
// them complete normally. The admission bound is fixed at construction
// and does not scale with resizes. Safe for concurrent use; returns
// ErrPoolClosed after Close.
func (p *Pool) Resize(k int) error {
	if k < 1 {
		k = 1
	}
	if k > len(p.shards) {
		k = len(p.shards)
	}
	p.resizeMu.Lock()
	defer p.resizeMu.Unlock()
	if p.closed.Load() {
		return ErrPoolClosed
	}
	cur := int(p.active.Load())
	if k == cur {
		return nil
	}
	w := pram.WorkersForShards(k)
	if k < cur {
		// Shrink: stop dispatching to the tail first, then grow the
		// survivors' budgets.
		p.active.Store(int64(k))
	}
	for i := 0; i < k; i++ {
		if err := p.reequip(p.shards[i], w); err != nil {
			return err
		}
	}
	if k > cur {
		// Grow: budgets are in place, open the new shards for dispatch.
		p.active.Store(int64(k))
	}
	p.resizes.Add(1)
	return nil
}

// reequip swaps sh's Solver for one with worker budget w (no-op when
// the budget already matches). Called with resizeMu held; takes the
// shard's slot so the swap waits out any in-flight call and is
// invisible to dispatchers.
func (p *Pool) reequip(sh *poolShard, w int) error {
	sh.slot <- struct{}{}
	defer func() { <-sh.slot }()
	if p.closed.Load() {
		return ErrPoolClosed
	}
	if sh.workers == w {
		return nil
	}
	old := sh.sv
	opts := p.shardOpts(sh.id, w)
	sv := NewSolver(opts...)
	sh.statsMu.Lock()
	sh.sv = sv
	sh.opts = opts
	sh.workers = sv.Workers()
	sh.statsMu.Unlock()
	old.Close()
	return nil
}

// leastLoaded picks the live shard with the smallest outstanding vertex
// load (ties broken by fewest completed calls, then lowest id). Load is
// added before the slot wait, so concurrent dispatchers spread out.
func (p *Pool) leastLoaded() *poolShard {
	live := p.shards[:p.active.Load()]
	best := live[0]
	for _, sh := range live[1:] {
		bl, sl := best.load.Load(), sh.load.Load()
		if sl < bl || (sl == bl && sh.calls.Load() < best.calls.Load()) {
			best = sh
		}
	}
	return best
}

// admit performs admission control for one logical call (a single
// cover, or a whole batch). The returned release must be called exactly
// once when the call leaves the pool.
func (p *Pool) admit(ctx context.Context) (release func(), err error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	if err := ctx.Err(); err != nil {
		p.canceled.Add(1)
		return nil, err
	}
	if p.depth > 0 && p.inflight.Add(1) > int64(p.depth) {
		p.inflight.Add(-1)
		p.rejected.Add(1)
		return nil, ErrPoolSaturated
	}
	if p.depth <= 0 {
		p.inflight.Add(1)
	}
	return func() { p.inflight.Add(-1) }, nil
}

// runOn waits for exclusive ownership of sh's Solver (honoring ctx
// while queued) and runs f. The caller must already hold an admission
// ticket and have accounted its load on sh.
func (p *Pool) runOn(ctx context.Context, sh *poolShard, f func(sh *poolShard) error) error {
	select {
	case sh.slot <- struct{}{}:
	case <-ctx.Done():
		p.canceled.Add(1)
		return ctx.Err()
	}
	defer func() { <-sh.slot }()
	// Close may have won the race for this slot's release cycle: it sets
	// closed before draining the slots, so this check is sufficient to
	// never touch a closed shard's Solver.
	if p.closed.Load() {
		return ErrPoolClosed
	}
	if err := ctx.Err(); err != nil {
		p.canceled.Add(1)
		return err
	}
	return p.safeRun(sh, f)
}

// safeRun executes f with the shard's slot held, converting a panic
// anywhere in the solve into a *PanicError and rebuilding the shard's
// Solver: a half-finished arena or poisoned worker pool must never
// serve the next request, but one poisoned request must not take the
// pool (or the process) down either. The deferred slot release in runOn
// still runs, so the slot cannot leak.
func (p *Pool) safeRun(sh *poolShard, f func(sh *poolShard) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.restartShard(sh)
			err = &PanicError{Value: r}
		}
	}()
	return f(sh)
}

// restartShard replaces a poisoned shard's Solver with a fresh one
// built from the same options. Called with the shard's slot held, so
// the swap is invisible to other dispatchers; the old Solver is closed
// best-effort (its own state may be the thing that panicked). The swap
// and the restart tick commit together under statsMu, closing the
// window where Stats could see the rebuilt shard with a stale Restarts
// count.
func (p *Pool) restartShard(sh *poolShard) {
	old := sh.sv
	sv := NewSolver(sh.opts...)
	sh.statsMu.Lock()
	sh.sv = sv
	sh.workers = sv.Workers()
	sh.restarts++
	sh.statsMu.Unlock()
	func() {
		defer func() { _ = recover() }()
		old.Close()
	}()
}

// withShard admits one call, reserves the least-loaded shard and runs f
// with exclusive ownership of that shard's Solver. cost is the load
// metric (vertices) steering the dispatcher.
func (p *Pool) withShard(ctx context.Context, cost int, f func(sh *poolShard) error) error {
	release, err := p.admit(ctx)
	if err != nil {
		return err
	}
	defer release()
	sh := p.leastLoaded()
	load := int64(cost) + 1
	sh.load.Add(load)
	defer sh.load.Add(-load)
	return p.runOn(ctx, sh, f)
}

// callCfg derives the per-call config: the shard Solver's base config
// with the call options applied. The worker budget stays pinned — a
// per-call WithWorkers cannot resize a shard's running pool.
func (sh *poolShard) callCfg(opts []Option) config {
	cfg := sh.sv.cfg
	for _, o := range opts {
		o(&cfg)
	}
	cfg.workers = sh.sv.cfg.workers
	return cfg
}

// cover runs one cover on the shard's Solver and copies it out. ctx is
// threaded into the solve so deadlines and cancellation are observed
// between pipeline steps, not just while queued.
func (sh *poolShard) cover(ctx context.Context, g *Graph, opts []Option) (*Cover, error) {
	cfg := sh.callCfg(opts)
	cfg.ctx = ctx
	cov, err := sh.sv.coverCfg(g, cfg)
	if err != nil {
		return nil, err
	}
	if cov.arena {
		cov.Paths = clonePaths(cov.Paths)
		cov.arena = false
	}
	cov.Shard = sh.id
	sh.record(g.N(), cov.Stats)
	return cov, nil
}

// MinimumPathCover computes a minimum path cover of g on the
// least-loaded shard. The context covers the queue wait as well as
// admission; the returned cover is the caller's to keep.
//
// On a pool built with WithCache, eligible requests (see cacheKey) are
// first resolved against the canonical-identity cache: a resident
// cover for the same graph — under any vertex relabelling — is copied
// out and remapped into g's numbering without occupying a shard, and
// concurrent requests for one uncached graph coalesce onto a single
// solve. The cache flight runs before admission, so waiters hold no
// queue slot; the solve itself (the cache fill) is admitted normally.
func (p *Pool) MinimumPathCover(ctx context.Context, g *Graph, opts ...Option) (*Cover, error) {
	key, form, cacheable := p.cacheKey(g, opts)
	if !cacheable {
		return p.solveCover(ctx, g, opts)
	}
	if p.closed.Load() {
		// Hits must not outlive the pool: Close means closed.
		return nil, ErrPoolClosed
	}
	var missCov *Cover
	entry, outcome, err := p.cache.Do(ctx, key, func() (*covercache.Entry, error) {
		cov, err := p.solveCover(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		missCov = cov
		return entryFromCover(cov, form), nil
	})
	if err != nil {
		return nil, err
	}
	if outcome == covercache.Miss && missCov != nil {
		// The filling request answers with the pipeline's own cover —
		// charged Stats and all, bit-identical to an uncached solve.
		return missCov, nil
	}
	return coverFromEntry(entry, form), nil
}

// solveCover is the uncached solve path: admission, least-loaded shard
// dispatch, copy-out. Exactly the pre-cache MinimumPathCover.
func (p *Pool) solveCover(ctx context.Context, g *Graph, opts []Option) (*Cover, error) {
	var out *Cover
	err := p.withShard(ctx, g.N(), func(sh *poolShard) error {
		cov, err := sh.cover(ctx, g, opts)
		if err != nil {
			return err
		}
		out = cov
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// coverMaybeCached serves one batch item, through the cache when the
// item is eligible, solving on the already-held shard otherwise (and
// on misses). It uses TryDo, never waiting on another request's
// in-flight solve: the caller holds a shard slot that a flight leader
// may itself be queued on, so waiting could deadlock. A cross-shard
// race on the same key at worst solves twice and unifies at insert.
func (p *Pool) coverMaybeCached(ctx context.Context, sh *poolShard, g *Graph, opts []Option) (*Cover, error) {
	key, form, cacheable := p.cacheKey(g, opts)
	if !cacheable {
		return sh.cover(ctx, g, opts)
	}
	var missCov *Cover
	entry, outcome, err := p.cache.TryDo(key, func() (*covercache.Entry, error) {
		cov, err := sh.cover(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		missCov = cov
		return entryFromCover(cov, form), nil
	})
	if err != nil {
		return nil, err
	}
	if outcome == covercache.Miss && missCov != nil {
		return missCov, nil
	}
	return coverFromEntry(entry, form), nil
}

// HamiltonianPath returns a Hamiltonian path of g (ok=false when none
// exists), computed by the parallel pipeline on a shard. The slice is
// the caller's to keep.
func (p *Pool) HamiltonianPath(ctx context.Context, g *Graph, opts ...Option) ([]int, bool, error) {
	return p.hamiltonian(ctx, g, opts, (*Solver).hamiltonianPathCfg)
}

// HamiltonianCycle returns a Hamiltonian cycle of g (ok=false when none
// exists), computed by the parallel pipeline on a shard. The slice is
// the caller's to keep.
func (p *Pool) HamiltonianCycle(ctx context.Context, g *Graph, opts ...Option) ([]int, bool, error) {
	return p.hamiltonian(ctx, g, opts, (*Solver).hamiltonianCycleCfg)
}

func (p *Pool) hamiltonian(ctx context.Context, g *Graph, opts []Option,
	run func(sv *Solver, g *Graph, cfg config) ([]int, bool, error)) ([]int, bool, error) {
	var path []int
	var ok bool
	err := p.withShard(ctx, g.N(), func(sh *poolShard) error {
		cfg := sh.callCfg(opts)
		cfg.ctx = ctx
		q, k, err := run(sh.sv, g, cfg)
		if err != nil {
			return err
		}
		path = append([]int(nil), q...)
		ok = k
		sh.record(g.N(), sh.sv.Stats())
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return path, ok, nil
}

// CoverBatch computes minimum path covers for every graph of the batch,
// returned in input order. The batch is regrouped before execution:
// requests of the same index width and similar size — and duplicate
// graphs in particular — land adjacently on the same shard, keeping
// each shard's request stream homogeneous for its scratch arena's size
// classes, then the groups run on the shards concurrently. On error
// (including context cancellation and a saturated or closed pool) the
// whole batch fails and the partial results are discarded.
func (p *Pool) CoverBatch(ctx context.Context, gs []*Graph, opts ...Option) ([]*Cover, error) {
	if len(gs) == 0 {
		return nil, nil
	}
	// The whole batch is one admission unit: it occupies one queue slot
	// no matter how many shard segments it fans out to, so a bounded
	// queue shorter than the shard count cannot starve batches.
	release, err := p.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	p.batches.Add(1)
	segs := p.batchSegments(gs)
	out := make([]*Cover, len(gs))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for _, seg := range segs {
		// Shards are assigned here, sequentially, so each segment's load
		// lands on the dispatcher's books before the next segment picks:
		// an idle pool spreads k segments over k distinct shards instead
		// of racing all of them onto the same least-loaded one.
		segCost := int64(0)
		for _, idx := range seg {
			segCost += int64(gs[idx].N()) + 1
		}
		sh := p.leastLoaded()
		sh.load.Add(segCost)
		wg.Add(1)
		go func(sh *poolShard, seg []int, segCost int64) {
			defer wg.Done()
			defer sh.load.Add(-segCost)
			err := p.runOn(ctx, sh, func(sh *poolShard) error {
				for _, idx := range seg {
					if err := ctx.Err(); err != nil {
						p.canceled.Add(1)
						return err
					}
					if p.closed.Load() {
						return ErrPoolClosed
					}
					cov, err := p.coverMaybeCached(ctx, sh, gs[idx], opts)
					if err != nil {
						return err
					}
					out[idx] = cov
				}
				return nil
			})
			if err != nil {
				fail(err)
			}
		}(sh, seg, segCost)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// batchSegments orders the batch for locality and splits it into at
// most one contiguous segment per shard, balanced by total vertices.
// The order key is (index width, size bucket, first appearance of the
// graph value): same-width and similar-n requests group together, and
// repeated queries of the identical graph become adjacent, so a shard
// replays the same arena size classes call after call instead of
// bouncing between widths and sizes.
func (p *Pool) batchSegments(gs []*Graph) [][]int {
	first := make(map[*Graph]int, len(gs))
	for i, g := range gs {
		if _, ok := first[g]; !ok {
			first[g] = i
		}
	}
	order := make([]int, len(gs))
	for i := range order {
		order[i] = i
	}
	key := func(i int) [3]int {
		n := gs[i].N()
		return [3]int{int(core.AutoWidth(n)), bits.Len(uint(n)), first[gs[i]]}
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := key(order[a]), key(order[b])
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})
	k := int(p.active.Load())
	total := 0
	for _, g := range gs {
		total += g.N() + 1
	}
	target := (total + k - 1) / k
	segs := make([][]int, 0, k)
	var cur []int
	acc := 0
	for _, idx := range order {
		cur = append(cur, idx)
		acc += gs[idx].N() + 1
		if acc >= target && len(segs) < k-1 {
			segs = append(segs, cur)
			cur, acc = nil, 0
		}
	}
	if len(cur) > 0 {
		segs = append(segs, cur)
	}
	return segs
}

// Close marks the pool closed, waits for in-flight calls to drain,
// stops every shard's worker pool, and wakes queued waiters (which then
// fail with ErrPoolClosed). Close is idempotent and safe to call
// concurrently with in-flight work; batches observe the close between
// items and abort.
func (p *Pool) Close() {
	p.closeOne.Do(func() {
		p.closed.Store(true)
		// Drain: taking every slot waits out the in-flight calls (and
		// beats queued waiters, who re-check closed once they get a slot).
		for _, sh := range p.shards {
			sh.slot <- struct{}{}
		}
		for _, sh := range p.shards {
			sh.sv.Close()
		}
		for _, sh := range p.shards {
			<-sh.slot
		}
	})
}

// ShardStats is one shard's aggregate serving record.
type ShardStats struct {
	Shard    int   `json:"shard"`
	Workers  int   `json:"workers"`
	Calls    int64 `json:"calls"`
	Vertices int64 `json:"vertices"`
	SimTime  int64 `json:"sim_time"`
	SimWork  int64 `json:"sim_work"`
	Load     int64 `json:"load"`
	Restarts int64 `json:"restarts"`
	// ArenaBytes is the shard Solver's retained arena footprint as of
	// its most recent completed call (see Solver.ArenaBytes).
	ArenaBytes int64 `json:"arena_bytes"`
	// Active reports whether the shard currently receives dispatch
	// (false for shards beyond the live count after a shrink, or not yet
	// grown into under WithMaxShards).
	Active bool `json:"active"`
}

// PoolStats aggregates the pool's serving counters: per-shard records
// plus their totals, the admission-control counters, and — on cached
// pools — the result cache's counters (nil when the pool is uncached;
// shard counters record only cache misses, since hits never solve).
type PoolStats struct {
	Shards     []ShardStats `json:"shards"`
	Calls      int64        `json:"calls"`
	Vertices   int64        `json:"vertices"`
	SimTime    int64        `json:"sim_time"`
	SimWork    int64        `json:"sim_work"`
	Batches    int64        `json:"batches"`
	Rejected   int64        `json:"rejected"`
	Canceled   int64        `json:"canceled"`
	Restarts   int64        `json:"restarts"`
	InFlight   int64        `json:"in_flight"`
	QueueDepth int          `json:"queue_depth"`
	// ActiveShards is the live shard count (see Resize); Resizes counts
	// completed resizes since construction. ArenaBytes totals the live
	// shards' retained arena footprints.
	ActiveShards int         `json:"active_shards"`
	Resizes      int64       `json:"resizes"`
	ArenaBytes   int64       `json:"arena_bytes"`
	Cache        *CacheStats `json:"cache,omitempty"`
}

// Stats snapshots the pool's counters. Safe to call concurrently with
// serving; each shard row is snapshotted under that shard's stats lock,
// so a row is always internally consistent (a call's vertices never
// appear without its sim counters, a rebuilt shard never without its
// restart tick). The pool-level totals sum per-shard snapshots taken in
// sequence, not one global cut.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{
		Batches:      p.batches.Load(),
		Rejected:     p.rejected.Load(),
		Canceled:     p.canceled.Load(),
		InFlight:     p.inflight.Load(),
		QueueDepth:   p.depth,
		ActiveShards: int(p.active.Load()),
		Resizes:      p.resizes.Load(),
	}
	for _, sh := range p.shards {
		sh.statsMu.Lock()
		row := ShardStats{
			Shard:      sh.id,
			Workers:    sh.workers,
			Calls:      sh.calls.Load(),
			Vertices:   sh.vertices,
			SimTime:    sh.simTime,
			SimWork:    sh.simWork,
			Load:       sh.load.Load(),
			Restarts:   sh.restarts,
			ArenaBytes: sh.arena,
			Active:     sh.id < st.ActiveShards,
		}
		sh.statsMu.Unlock()
		st.Shards = append(st.Shards, row)
		st.Calls += row.Calls
		st.Vertices += row.Vertices
		st.SimTime += row.SimTime
		st.SimWork += row.SimWork
		st.Restarts += row.Restarts
		if row.Active {
			st.ArenaBytes += row.ArenaBytes
		}
	}
	if p.cache != nil {
		cs := p.cache.Stats()
		st.Cache = &CacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Coalesced: cs.Coalesced,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			Bytes:     cs.Bytes,
			Capacity:  cs.Capacity,
		}
	}
	return st
}
