package pathcover

import (
	"fmt"
	"sync"
	"testing"
)

func TestRegistryRegisterGetDelete(t *testing.T) {
	r := NewRegistry(8)
	g := MustParseCotree("(1 (0 a b) c)")
	id := r.Register(g)
	if id == "" {
		t.Fatal("empty id")
	}
	got, ok := r.Get(id)
	if !ok || got != g {
		t.Fatalf("Get(%q) = %p, %v; want %p", id, got, ok, g)
	}
	if !r.Delete(id) {
		t.Fatal("Delete returned false for a live id")
	}
	if _, ok := r.Get(id); ok {
		t.Fatal("deleted id still resolves")
	}
	if r.Delete(id) {
		t.Fatal("double Delete returned true")
	}
	// Ids are never reused: a later registration gets a fresh one.
	if id2 := r.Register(MustParseCotree("(0 x y)")); id2 == id {
		t.Fatalf("id %q reused after delete", id)
	}
}

// TestRegistryEagerCanonicalization: Register pays the canonical form
// up front, so the pool's cache key needs no further work per query.
func TestRegistryEagerCanonicalization(t *testing.T) {
	r := NewRegistry(4)
	g := Random(9, 128, Mixed)
	r.Register(g)
	if g.canonForm == nil {
		t.Fatal("Register did not canonicalize the graph")
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	r := NewRegistry(3)
	ids := make([]string, 5)
	for i := range ids {
		ids[i] = r.Register(MustParseCotree(fmt.Sprintf("(0 a%d b%d)", i, i)))
		// Keep ids[0] hot so recency, not insertion order, decides.
		if i >= 1 {
			if _, ok := r.Get(ids[0]); !ok && i < 3 {
				t.Fatalf("ids[0] evicted too early at i=%d", i)
			}
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if _, ok := r.Get(ids[0]); !ok {
		t.Fatal("recently-touched graph was evicted")
	}
	if _, ok := r.Get(ids[1]); ok {
		t.Fatal("least-recently-used graph survived")
	}
	st := r.Stats()
	if st.Resident != 3 || st.Capacity != 3 || st.Registered != 5 || st.Evicted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Misses == 0 {
		t.Fatal("missed Gets not counted")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []string
			for i := 0; i < 50; i++ {
				id := r.Register(MustParseCotree(fmt.Sprintf("(1 p%d_%d q%d_%d)", w, i, w, i)))
				mine = append(mine, id)
				r.Get(mine[len(mine)/2])
				if i%7 == 0 {
					r.Delete(mine[0])
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() > 16 {
		t.Fatalf("Len = %d exceeds capacity", r.Len())
	}
}
