package pathcover

import (
	"fmt"
	"runtime"

	"pathcover/internal/baseline"
	"pathcover/internal/core"
	"pathcover/internal/pram"
)

// Solver is reusable path-cover state: one persistent PRAM worker pool
// plus one scratch arena, amortised across calls. A steady-state
// MinimumPathCover on a Solver performs no goroutine creation and
// recycles every internal buffer of the pipeline, which is the fast path
// for serving many cover queries.
//
// A Solver is not safe for concurrent use; create one per goroutine, or
// use Pool, which owns a host-budgeted shard fleet and is what the
// package-level Graph methods route through internally. The slices
// returned by a Solver's methods live in its arena and stay valid only
// until the next call on the same Solver — copy them (or use the Graph
// methods, which copy) to retain results across calls. Call Close when
// done to stop the worker pool promptly.
type Solver struct {
	cfg config
	sim *pram.Sim

	// Previous call's outputs, recycled at the start of the next call.
	prevCover *core.Cover
	prevSlice []int
}

// NewSolver returns a Solver with the given options. WithProcessors
// fixes the simulated processor count for every call; the default
// derives n/log n from each graph. WithWorkers sets the real worker-pool
// size (default GOMAXPROCS).
func NewSolver(opts ...Option) *Solver {
	cfg := config{algorithm: Parallel, seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return &Solver{cfg: cfg}
}

// Close releases the Solver's outputs and stops its worker pool. The
// Solver remains usable afterwards (phases run inline on a fresh pool-
// free Sim path), but results handed out earlier must not be used.
func (sv *Solver) Close() {
	if sv.sim != nil {
		sv.retire()
		sv.sim.Close()
	}
}

// Workers reports the Solver's real worker budget: the WithWorkers
// option when set, GOMAXPROCS otherwise. Pool shards are constructed
// with a pinned budget of GOMAXPROCS divided across the shards.
func (sv *Solver) Workers() int {
	if sv.cfg.workers > 0 {
		return sv.cfg.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats reports the simulated PRAM cost of the last parallel run.
func (sv *Solver) Stats() Stats {
	if sv.sim == nil {
		return Stats{}
	}
	return statsOf(sv.sim)
}

// ArenaBytes reports the bytes currently retained in the Solver's
// scratch arena freelists — the solver's standing memory footprint
// between calls. Zero until the first parallel run. Like every Solver
// method it follows the single-goroutine discipline; Pool snapshots it
// under the shard lock after each call, which is how the daemon's
// /metrics endpoint observes it without racing a live solve.
func (sv *Solver) ArenaBytes() int64 {
	if sv.sim == nil {
		return 0
	}
	return sv.sim.Scratch().Bytes()
}

func (sv *Solver) ensureSim() *pram.Sim {
	if sv.sim == nil {
		w := sv.cfg.workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		opts := []pram.Option{pram.WithWorkers(w)}
		if len(sv.cfg.cpuset) > 0 {
			opts = append(opts, pram.WithCPUSet(sv.cfg.cpuset))
		}
		sv.sim = pram.New(1, opts...)
	}
	return sv.sim
}

// retire recycles the previous call's outputs into the arena.
func (sv *Solver) retire() {
	if sv.prevCover != nil {
		sv.prevCover.Release(sv.sim)
		sv.prevCover = nil
	}
	if sv.prevSlice != nil {
		pram.Release(sv.sim, sv.prevSlice)
		sv.prevSlice = nil
	}
}

// prepare readies the Sim for a run over an n-vertex graph under cfg.
func (sv *Solver) prepare(n int, cfg config) *pram.Sim {
	s := sv.ensureSim()
	sv.retire()
	procs := cfg.procs
	if procs <= 0 {
		procs = pram.ProcsFor(n)
	}
	s.SetProcs(procs)
	s.Reset()
	return s
}

// MinimumPathCover computes a minimum path cover of g, reusing the
// Solver's pool and arena. The returned cover's paths are valid until
// the next call on this Solver.
func (sv *Solver) MinimumPathCover(g *Graph) (*Cover, error) {
	return sv.coverCfg(g, sv.cfg)
}

func (sv *Solver) coverCfg(g *Graph, cfg config) (*Cover, error) {
	route, rg, err := g.resolveBackend(cfg)
	if err != nil {
		return nil, err
	}
	check := cfg.checkFn()
	if route != BackendCograph {
		// Degraded backends allocate plain heap memory; the Solver's
		// arena and worker pool stay untouched.
		return degradedCover(rg, route, check)
	}
	switch cfg.algorithm {
	case Sequential:
		if check != nil {
			if err := check("step1"); err != nil {
				return nil, err
			}
		}
		paths := baseline.Run(g.t)
		return exactCograph(&Cover{Paths: paths, NumPaths: len(paths)}), nil
	case Naive:
		s := sv.prepare(g.N(), cfg)
		if check != nil {
			if err := check("step1"); err != nil {
				return nil, err
			}
		}
		b := g.t.Binarize(s)
		L := b.MakeLeftist(s, cfg.seed)
		paths := baseline.NaiveCover(s, b, L)
		pram.Release(s, L)
		b.Release(s)
		return exactCograph(&Cover{Paths: paths, NumPaths: len(paths), Stats: statsOf(s)}), nil
	default:
		s := sv.prepare(g.N(), cfg)
		cov, err := core.ParallelCover(s, g.t, core.Options{Seed: cfg.seed, Width: cfg.width(), Check: check})
		if err != nil {
			return nil, err
		}
		sv.prevCover = cov
		c := exactCograph(&Cover{Paths: cov.Paths, NumPaths: cov.NumPaths, Stats: statsOf(s)})
		c.arena = true
		return c, nil
	}
}

// width maps the public index-width switch onto the core option (the
// public IndexWidth is an alias of core's, so this is the identity; it
// survives as the single point the mapping would change at).
func (c config) width() core.IndexWidth { return c.idxWidth }

// HamiltonianPath returns a Hamiltonian path of g computed by the
// parallel pipeline, ok=false when none exists, or an error if the
// pipeline failed internally (no silent sequential fallback — use
// Graph.HamiltonianPath for that behaviour). The path is valid until the
// next call on this Solver.
func (sv *Solver) HamiltonianPath(g *Graph) ([]int, bool, error) {
	return sv.hamiltonianPathCfg(g, sv.cfg)
}

func (sv *Solver) hamiltonianPathCfg(g *Graph, cfg config) ([]int, bool, error) {
	if g.t == nil {
		return nil, false, ErrNotCograph
	}
	s := sv.prepare(g.N(), cfg)
	p, ok, err := core.ParallelHamiltonianPath(s, g.t, core.Options{Seed: cfg.seed, Width: cfg.width(), Check: cfg.checkFn()})
	if err != nil {
		return nil, false, fmt.Errorf("pathcover: parallel Hamiltonian path: %w", err)
	}
	sv.prevSlice = p
	return p, ok, nil
}

// HamiltonianCycle returns a Hamiltonian cycle of g computed by the
// parallel pipeline, ok=false when none exists, or an error if the
// pipeline failed internally. The cycle is valid until the next call on
// this Solver.
func (sv *Solver) HamiltonianCycle(g *Graph) ([]int, bool, error) {
	return sv.hamiltonianCycleCfg(g, sv.cfg)
}

func (sv *Solver) hamiltonianCycleCfg(g *Graph, cfg config) ([]int, bool, error) {
	if g.t == nil {
		return nil, false, ErrNotCograph
	}
	s := sv.prepare(g.N(), cfg)
	c, ok, err := core.ParallelHamiltonianCycle(s, g.t, core.Options{Seed: cfg.seed, Width: cfg.width(), Check: cfg.checkFn()})
	if err != nil {
		return nil, false, fmt.Errorf("pathcover: parallel Hamiltonian cycle: %w", err)
	}
	sv.prevSlice = c
	return c, ok, nil
}
